package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{0, 1, 7, 100, 4096} {
			hits := make([]int32, n)
			For(n, workers, 16, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var bad atomic.Int32
	For(1000, workers, 8, func(worker, _ int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d iterations saw an out-of-range worker id", bad.Load())
	}
}

func TestForSingleWorkerIsOrdered(t *testing.T) {
	var got []int
	For(100, 1, 7, func(_, i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("single-worker For out of order at %d: %d", i, v)
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]int32, n)
			ForChunks(n, workers, func(_, lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForVertices(t *testing.T) {
	const n = 5000
	hits := make([]int32, n)
	ForVertices(n, func(v int) { atomic.AddInt32(&hits[v], 1) })
	for v, h := range hits {
		if h != 1 {
			t.Fatalf("vertex %d hit %d times", v, h)
		}
	}
}

func TestPrefixSum(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 1 << 17} {
		x := make([]int64, n)
		want := make([]int64, n)
		var sum int64
		for i := range x {
			x[i] = int64(i%7) - 2
			sum += x[i]
			want[i] = sum
		}
		total := PrefixSum(x)
		if total != sum {
			t.Fatalf("n=%d: total %d, want %d", n, total, sum)
		}
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, x[i], want[i])
			}
		}
	}
}

func TestOffsets(t *testing.T) {
	deg := []int64{3, 0, 2, 5}
	off := Offsets(deg)
	want := []int64{0, 3, 3, 5, 10}
	if len(off) != len(want) {
		t.Fatalf("offsets length %d, want %d", len(off), len(want))
	}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("offsets[%d] = %d, want %d", i, off[i], want[i])
		}
	}
	if deg[0] != 3 || deg[3] != 5 {
		t.Fatal("Offsets modified its input")
	}
}

func TestEdgeBuffers(t *testing.T) {
	b := NewEdgeBuffers(3)
	For(300, 3, 10, func(worker, i int) {
		b.Add(worker, int32(i), int32(i+1))
	})
	if b.Len() != 300 {
		t.Fatalf("Len = %d, want 300", b.Len())
	}
	us, vs := b.Concat()
	if len(us) != 300 || len(vs) != 300 {
		t.Fatalf("Concat lengths %d/%d, want 300", len(us), len(vs))
	}
	seen := make(map[int32]bool)
	for i := range us {
		if vs[i] != us[i]+1 {
			t.Fatalf("pair %d: (%d,%d) not matched", i, us[i], vs[i])
		}
		if seen[us[i]] {
			t.Fatalf("duplicate u %d", us[i])
		}
		seen[us[i]] = true
	}
}

func TestWorkerCount(t *testing.T) {
	if WorkerCount(5) != 5 {
		t.Fatal("explicit worker count not honored")
	}
	if WorkerCount(0) < 1 || WorkerCount(-3) < 1 {
		t.Fatal("resolved worker count must be positive")
	}
	if WorkersFor(0, 100) != 1 {
		t.Fatal("WorkersFor must return at least 1")
	}
	if w := WorkersFor(150, 100); w > 2 {
		t.Fatalf("WorkersFor(150,100) = %d, want <= 2", w)
	}
}
