package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEveryAcceptedTask checks the core contract: a nil-error
// Submit means the task runs, with a worker width inside the budget.
func TestPoolRunsEveryAcceptedTask(t *testing.T) {
	b := NewBudget(4)
	p := NewPool(context.Background(), b, 2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		err := p.Submit(context.Background(), func(workers int) {
			defer wg.Done()
			if workers < 1 || workers > 4 {
				t.Errorf("task width %d outside budget of 4", workers)
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	p.Close()
	if got := ran.Load(); got != 64 {
		t.Fatalf("ran %d tasks, want 64", got)
	}
	if got := b.Available(); got != 4 {
		t.Fatalf("tokens leaked: %d available after Close, want 4", got)
	}
}

// TestPoolReusesLeases pins the amortization the pool exists for: a
// slot leases once and every later task reuses the grant, so N tasks on
// one slot cost one lease, not N.
func TestPoolReusesLeases(t *testing.T) {
	b := NewBudget(2)
	p := NewPool(context.Background(), b, 1)
	defer p.Close()
	widths := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func(workers int) {
			defer wg.Done()
			widths <- workers
			// While a slot holds its lease, those tokens stay out of the
			// budget — the reuse is observable as a steady Available.
			if free := b.Available(); free != 0 {
				t.Errorf("slot running but %d tokens free, want 0 (single slot leases the pool)", free)
			}
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	close(widths)
	for w := range widths {
		if w != 2 {
			t.Fatalf("task width %d, want the full 2-token lease reused across tasks", w)
		}
	}
}

// TestPoolStressConcurrentBatches drives the usage shape of
// chordal.Batch under -race: concurrent batches, each with its own
// budget and pool. Within a pool the slot shares sum exactly to the
// budget, so task widths never oversubscribe it and every token
// returns on Close — the regression pin for the PR 3 lease semantics
// carried over to persistent slots.
func TestPoolStressConcurrentBatches(t *testing.T) {
	var outer sync.WaitGroup
	for batch := 0; batch < 8; batch++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			const total = 4
			b := NewBudget(total)
			p := NewPool(context.Background(), b, 2)
			var inUse, peak atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < 32; i++ {
				wg.Add(1)
				if err := p.Submit(context.Background(), func(workers int) {
					defer wg.Done()
					cur := inUse.Add(int64(workers))
					for {
						pk := peak.Load()
						if cur <= pk || peak.CompareAndSwap(pk, cur) {
							break
						}
					}
					inUse.Add(-int64(workers))
				}); err != nil {
					t.Errorf("Submit: %v", err)
					wg.Done()
				}
			}
			wg.Wait()
			p.Close()
			if pk := peak.Load(); pk > total {
				t.Errorf("peak concurrent task width %d exceeds the %d-token budget", pk, total)
			}
			if got := b.Available(); got != total {
				t.Errorf("tokens leaked: %d available after Close, want %d", got, total)
			}
		}()
	}
	outer.Wait()
}

// TestPoolSharedBudgetLiveness pins the deadlock-freedom contract when
// many pools contend for one budget: every accepted task runs (slots
// that find the budget drained fall back to width 1 instead of parking
// on tokens held by other pools' idle slots), and every leased token
// returns once all pools close.
func TestPoolSharedBudgetLiveness(t *testing.T) {
	const total = 2
	b := NewBudget(total)
	var ran atomic.Int64
	var outer sync.WaitGroup
	for batch := 0; batch < 6; batch++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			p := NewPool(context.Background(), b, 2)
			defer p.Close()
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				if err := p.Submit(context.Background(), func(workers int) {
					defer wg.Done()
					if workers < 1 || workers > total {
						t.Errorf("task width %d outside 1..%d", workers, total)
					}
					ran.Add(1)
				}); err != nil {
					t.Errorf("Submit: %v", err)
					wg.Done()
				}
			}
			wg.Wait()
		}()
	}
	done := make(chan struct{})
	go func() { outer.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shared-budget pools deadlocked")
	}
	if got := ran.Load(); got != 6*16 {
		t.Fatalf("ran %d tasks, want %d", got, 6*16)
	}
	if got := b.Available(); got != total {
		t.Fatalf("tokens leaked: %d available after all pools closed, want %d", got, total)
	}
}

// TestPoolCancelDrains checks the cancellation contract: canceling the
// pool's context fails pending Submits, lets running tasks finish, and
// releases every lease — no token leak, no deadlock.
func TestPoolCancelDrains(t *testing.T) {
	b := NewBudget(2)
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, b, 2)

	release := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func(int) {
			defer wg.Done()
			started <- struct{}{}
			<-release
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	<-started
	<-started

	cancel()
	// Every slot is busy and the pool is canceled: a new submission must
	// fail fast with ErrPoolClosed rather than block forever.
	err := p.Submit(context.Background(), func(int) { t.Error("task ran after cancel filled no slot") })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after cancel: %v, want ErrPoolClosed", err)
	}
	// A submitter-side context failure is reported as that context's
	// error instead.
	subCtx, subCancel := context.WithCancel(context.Background())
	subCancel()
	if err := p.Submit(subCtx, func(int) {}); !errors.Is(err, context.Canceled) && !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit with dead ctx: %v", err)
	}

	close(release) // running tasks finish
	wg.Wait()
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain a canceled pool")
	}
	if got := b.Available(); got != 2 {
		t.Fatalf("tokens leaked on cancel: %d available, want 2", got)
	}
}

// TestPoolTopsUpPartialLease pins the recovery path: a slot that got a
// partial grant (the budget was transiently short) tops its lease back
// up toward the full share before later tasks instead of being stuck
// undersized for the pool's lifetime.
func TestPoolTopsUpPartialLease(t *testing.T) {
	b := NewBudget(4)
	outside := b.Lease(3) // someone else transiently holds most tokens
	if outside != 3 {
		t.Fatalf("setup Lease(3) = %d", outside)
	}
	p := NewPool(context.Background(), b, 1)
	defer p.Close()

	run := func() int {
		got := make(chan int, 1)
		if err := p.Submit(context.Background(), func(workers int) { got <- workers }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		return <-got
	}
	if w := run(); w != 1 {
		t.Fatalf("first task width %d, want the partial grant of 1", w)
	}
	b.Release(outside) // contention gone
	if w := run(); w != 4 {
		t.Fatalf("task width after release = %d, want the topped-up full share of 4", w)
	}
	p.Close()
	if got := b.Available(); got != 4 {
		t.Fatalf("tokens leaked: %d available, want 4", got)
	}
}

// TestPoolClampsSlots pins the deadlock guard: more slots than budget
// tokens are clamped, so every slot can lease at least one token.
func TestPoolClampsSlots(t *testing.T) {
	b := NewBudget(2)
	p := NewPool(context.Background(), b, 16)
	defer p.Close()
	if got := p.Slots(); got != 2 {
		t.Fatalf("Slots() = %d, want clamp to the 2-token budget", got)
	}
	// Default slot count is one per token.
	p2 := NewPool(context.Background(), b, 0)
	defer p2.Close()
	if got := p2.Slots(); got != 2 {
		t.Fatalf("default Slots() = %d, want 2", got)
	}
}
