package parallel

import "sync"

// Budget is a shared pool of worker tokens that divides the machine's
// effective parallelism among concurrent jobs. Each job leases as many
// tokens as are free (up to its request) before running and releases
// them when done, so N simultaneous extraction kernels share the cores
// instead of each spawning a full-width worker set and oversubscribing
// the machine GOMAXPROCS-fold. The service layer leases from one
// process-wide Budget per extraction job, requesting each job's fair
// share of the pool by default.
//
// Lease never grants zero: when the pool is empty it blocks until a
// token frees up, which bounds admitted concurrency to the pool size
// without starving any job.
type Budget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	avail int
}

// NewBudget creates a Budget with the given number of worker tokens;
// total <= 0 selects the effective parallelism (GOMAXPROCS clamped to
// the physical CPU count).
func NewBudget(total int) *Budget {
	if total <= 0 {
		total = maxParallelism()
	}
	b := &Budget{total: total, avail: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the pool size.
func (b *Budget) Total() int { return b.total }

// Lease takes up to want tokens from the pool and returns the number
// granted, always at least 1: if the pool is empty it blocks until a
// token is released. want <= 0 requests the full pool. The caller must
// Release exactly the granted count when its work completes.
func (b *Budget) Lease(want int) int {
	if want <= 0 || want > b.total {
		want = b.total
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.avail == 0 {
		b.cond.Wait()
	}
	granted := want
	if granted > b.avail {
		granted = b.avail
	}
	b.avail -= granted
	return granted
}

// Release returns n previously leased tokens to the pool and wakes
// blocked leases.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.avail += n
	if b.avail > b.total {
		panic("parallel: Budget.Release of tokens never leased")
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}
