package parallel

import (
	"context"
	"sync"
)

// Budget is a shared pool of worker tokens that divides the machine's
// effective parallelism among concurrent jobs. Each job leases as many
// tokens as are free (up to its request) before running and releases
// them when done, so N simultaneous extraction kernels share the cores
// instead of each spawning a full-width worker set and oversubscribing
// the machine GOMAXPROCS-fold. The service layer leases from one
// process-wide Budget per extraction job, requesting each job's fair
// share of the pool by default.
//
// Lease never grants zero: when the pool is empty it blocks until a
// token frees up, which bounds admitted concurrency to the pool size
// without starving any job.
type Budget struct {
	mu      sync.Mutex
	cond    *sync.Cond
	total   int
	avail   int
	waiters int
}

// NewBudget creates a Budget with the given number of worker tokens;
// total <= 0 selects the effective parallelism (GOMAXPROCS clamped to
// the physical CPU count).
func NewBudget(total int) *Budget {
	if total <= 0 {
		total = maxParallelism()
	}
	b := &Budget{total: total, avail: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total returns the pool size.
func (b *Budget) Total() int { return b.total }

// Available returns the number of currently unleased tokens — a
// point-in-time snapshot for tests and health reporting, not a
// reservation (another caller may lease between the read and any use).
func (b *Budget) Available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.avail
}

// Waiters returns how many Lease/LeaseContext calls are currently
// blocked on an empty pool — a point-in-time snapshot for health
// reporting, like Available.
func (b *Budget) Waiters() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiters
}

// Lease takes up to want tokens from the pool and returns the number
// granted, always at least 1: if the pool is empty it blocks until a
// token is released. want <= 0 requests the full pool. The caller must
// Release exactly the granted count when its work completes.
func (b *Budget) Lease(want int) int {
	granted, _ := b.lease(context.Background(), want)
	return granted
}

// TryLease takes up to want tokens without blocking: it returns the
// granted count, or 0 when the pool is currently empty (a grant of 0
// needs no Release). want <= 0 requests the full pool. Pool slots use
// it so a slot never parks holding a queued task while other holders —
// possibly idle slots of another pool on the same budget — sit on the
// tokens it is waiting for.
func (b *Budget) TryLease(want int) int {
	if want <= 0 || want > b.total {
		want = b.total
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.avail == 0 {
		return 0
	}
	granted := want
	if granted > b.avail {
		granted = b.avail
	}
	b.avail -= granted
	return granted
}

// LeaseContext is Lease under a context: a caller blocked on an empty
// pool is released when ctx is done, receiving 0 tokens and ctx.Err().
// A canceled job must never wait out another job's lease, and a grant
// of 0 needs no Release — this is how the service's cancel endpoint
// frees a queued job without leaking budget tokens.
func (b *Budget) LeaseContext(ctx context.Context, want int) (int, error) {
	return b.lease(ctx, want)
}

func (b *Budget) lease(ctx context.Context, want int) (int, error) {
	if want <= 0 || want > b.total {
		want = b.total
	}
	// A cond has no channel to select on; a watcher goroutine turns
	// ctx cancellation into a broadcast so the wait loop can re-check.
	// The watcher exits as soon as the lease resolves.
	done := make(chan struct{})
	defer close(done)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				// Taking the lock before broadcasting closes the race
				// with a waiter between its ctx check and cond.Wait:
				// Wait releases the lock atomically, so once this lock
				// is acquired the waiter is either not yet in the loop
				// (its next ctx check fails) or parked (the broadcast
				// wakes it).
				b.mu.Lock()
				b.mu.Unlock()
				b.cond.Broadcast()
			case <-done:
			}
		}()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.avail == 0 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		b.waiters++
		b.cond.Wait()
		b.waiters--
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	granted := want
	if granted > b.avail {
		granted = b.avail
	}
	b.avail -= granted
	return granted, nil
}

// Release returns n previously leased tokens to the pool and wakes
// blocked leases.
func (b *Budget) Release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	b.avail += n
	if b.avail > b.total {
		panic("parallel: Budget.Release of tokens never leased")
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}
