package parallel

// EdgeBuffers collects (u, v) endpoint pairs into per-worker slices so
// parallel generators and parsers can emit edges without locks, then
// gathers them into the flat endpoint slices BuildFromEdges consumes.
// Each worker must append only through its own index.
type EdgeBuffers struct {
	us, vs [][]int32
}

// NewEdgeBuffers returns buffers for the given number of worker slots
// (at least 1).
func NewEdgeBuffers(workers int) *EdgeBuffers {
	if workers < 1 {
		workers = 1
	}
	return &EdgeBuffers{us: make([][]int32, workers), vs: make([][]int32, workers)}
}

// Workers returns the number of per-worker slots.
func (b *EdgeBuffers) Workers() int { return len(b.us) }

// Grow pre-allocates capacity for n additional edges in worker's buffer.
func (b *EdgeBuffers) Grow(worker, n int) {
	if cap(b.us[worker])-len(b.us[worker]) < n {
		us := make([]int32, len(b.us[worker]), len(b.us[worker])+n)
		copy(us, b.us[worker])
		b.us[worker] = us
		vs := make([]int32, len(b.vs[worker]), len(b.vs[worker])+n)
		copy(vs, b.vs[worker])
		b.vs[worker] = vs
	}
}

// Add appends the edge (u, v) to worker's buffer.
func (b *EdgeBuffers) Add(worker int, u, v int32) {
	b.us[worker] = append(b.us[worker], u)
	b.vs[worker] = append(b.vs[worker], v)
}

// Len returns the total number of buffered edges across all workers.
func (b *EdgeBuffers) Len() int {
	total := 0
	for _, s := range b.us {
		total += len(s)
	}
	return total
}

// Concat gathers the per-worker buffers into single endpoint slices in
// worker order. The copy itself runs with one goroutine per non-empty
// buffer. The buffers remain valid afterwards.
func (b *EdgeBuffers) Concat() (us, vs []int32) {
	total := b.Len()
	us = make([]int32, total)
	vs = make([]int32, total)
	offsets := make([]int, len(b.us))
	off := 0
	for w, s := range b.us {
		offsets[w] = off
		off += len(s)
	}
	ForChunks(len(b.us), len(b.us), func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			copy(us[offsets[w]:], b.us[w])
			copy(vs[offsets[w]:], b.vs[w])
		}
	})
	return us, vs
}
