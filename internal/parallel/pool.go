package parallel

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed rejects submissions to a Pool after Close (or after its
// parent context was canceled).
var ErrPoolClosed = errors.New("parallel: pool is closed")

// Pool is the persistent counterpart of the per-call goroutine spawning
// the rest of this package does: a fixed set of long-lived executor
// slots fed from one run queue. Each slot leases its share of a shared
// Budget once — on the first task it executes — and holds that lease
// across every subsequent submission, so a batch of many small runs
// pays the lease negotiation per slot rather than per run. Tasks
// receive the slot's granted worker width and must keep any
// parallelism they spawn within it.
//
// The queue is an unbuffered handoff: Submit blocks until an idle slot
// accepts the task, which bounds in-flight work to the slot count with
// no intermediate queue to drain on cancellation. Closing the pool (or
// canceling the context it was created under) stops idle slots
// immediately, lets running tasks finish, and releases every held
// lease; a well-behaved task observes its own context and exits early.
type Pool struct {
	budget *Budget
	slots  int
	tasks  chan func(workers int)
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	closeOnce sync.Once
}

// NewPool creates a Pool of long-lived executor slots over budget,
// which supplies the worker tokens the slots lease and hold. A nil
// budget gets a fresh machine-width one. slots <= 0 selects one slot
// per budget token; more slots than tokens are clamped — a surplus
// slot could never lease and would deadlock its first task behind the
// other slots' held leases. The pool runs until Close or until ctx is
// canceled; both drain it the same way.
func NewPool(ctx context.Context, budget *Budget, slots int) *Pool {
	if budget == nil {
		budget = NewBudget(0)
	}
	if slots <= 0 || slots > budget.Total() {
		slots = budget.Total()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{
		budget: budget,
		slots:  slots,
		tasks:  make(chan func(workers int)),
		ctx:    pctx,
		cancel: cancel,
	}
	// Distribute the budget across slots with the remainder spread over
	// the first slots, so slots*share covers the whole pool (8 tokens on
	// 3 slots lease 3+3+2, not 2+2+2 with two stranded).
	share := budget.Total() / slots
	extra := budget.Total() % slots
	for i := 0; i < slots; i++ {
		want := share
		if i < extra {
			want++
		}
		p.wg.Add(1)
		go p.slot(want)
	}
	return p
}

// Slots returns the number of executor slots, the pool's bound on
// concurrently running tasks.
func (p *Pool) Slots() int { return p.slots }

// slot is one long-lived executor: it leases want tokens from the
// shared budget at its first opportunity, reuses the grant for every
// later task, and releases it when the pool drains. Lease attempts
// never block — a slot that finds the budget short (possible only when
// the budget is shared beyond this pool, since the pool's own shares
// sum exactly to the total) runs the task at whatever it holds (width
// 1 at minimum) and tops the lease up toward its full share before
// each later task, trading a bounded sliver of oversubscription for
// deadlock freedom: a parked slot holding an accepted task could wait
// forever on tokens held by another pool's idle slots.
func (p *Pool) slot(want int) {
	defer p.wg.Done()
	granted := 0
	defer func() {
		if granted > 0 {
			p.budget.Release(granted)
		}
	}()
	for {
		select {
		case <-p.ctx.Done():
			return
		case task := <-p.tasks:
			if granted < want {
				granted += p.budget.TryLease(want - granted)
			}
			if granted == 0 {
				task(1)
				continue
			}
			task(granted)
		}
	}
}

// Submit hands fn to an idle slot and returns nil once the slot has
// accepted it — acceptance guarantees fn runs, with the slot's granted
// worker width as its argument. When every slot is busy, Submit blocks
// until one frees up (the pool's concurrency bound), until ctx is done
// (returning ctx.Err()), or until the pool closes (returning
// ErrPoolClosed). fn is responsible for observing its own context;
// the pool never abandons an accepted task.
func (p *Pool) Submit(ctx context.Context, fn func(workers int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.ctx.Done():
		return ErrPoolClosed
	}
}

// Close drains the pool: further Submits fail with ErrPoolClosed, idle
// slots exit immediately, running tasks finish, and every held budget
// lease is released before Close returns. Safe to call more than once
// and concurrently with Submit.
func (p *Pool) Close() {
	p.closeOnce.Do(p.cancel)
	p.wg.Wait()
}
