package parallel

// Padded wraps per-worker state with trailing padding so adjacent
// elements of a []Padded[T] land on distinct cache lines, eliminating
// false sharing between workers that update their own element on every
// iteration (lifted from the extraction kernel's worker counters).
type Padded[T any] struct {
	V T
	_ [64]byte
}

// NewPadded returns a slice of padded per-worker values.
func NewPadded[T any](workers int) []Padded[T] {
	if workers < 1 {
		workers = 1
	}
	return make([]Padded[T], workers)
}
