package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetLeaseBounds(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	if got := b.Lease(3); got != 3 {
		t.Fatalf("Lease(3) = %d, want 3", got)
	}
	// Only one token left; an oversized request is trimmed, not blocked.
	if got := b.Lease(8); got != 1 {
		t.Fatalf("Lease(8) with 1 free = %d, want 1", got)
	}
	b.Release(4)
	// want <= 0 asks for the whole pool.
	if got := b.Lease(0); got != 4 {
		t.Fatalf("Lease(0) = %d, want 4", got)
	}
	b.Release(4)
}

func TestBudgetWaiters(t *testing.T) {
	b := NewBudget(2)
	if b.Waiters() != 0 {
		t.Fatalf("Waiters on an idle pool = %d, want 0", b.Waiters())
	}
	hold := b.Lease(0)
	done := make(chan int)
	go func() { done <- b.Lease(1) }()
	// The blocked lease registers as a waiter...
	deadline := time.Now().Add(5 * time.Second)
	for b.Waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters = %d with one lease blocked, want 1", b.Waiters())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// ...and deregisters once a release unblocks it.
	b.Release(hold)
	if got := <-done; got != 1 {
		t.Fatalf("unblocked Lease(1) = %d, want 1", got)
	}
	if b.Waiters() != 0 {
		t.Fatalf("Waiters after unblock = %d, want 0", b.Waiters())
	}
	b.Release(1)
}

func TestBudgetNeverOversubscribes(t *testing.T) {
	const total, jobs = 3, 32
	b := NewBudget(total)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := b.Lease(2)
			if got < 1 || got > 2 {
				t.Errorf("Lease(2) = %d, want 1..2", got)
			}
			cur := inUse.Add(int64(got))
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inUse.Add(-int64(got))
			b.Release(got)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > total {
		t.Fatalf("peak leased tokens %d exceeds pool of %d", p, total)
	}
	if got := b.Lease(0); got != total {
		t.Fatalf("pool drained: final Lease(0) = %d, want %d", got, total)
	}
}
