package parallel

import (
	"sync/atomic"
	"testing"
)

// These benchmarks measure the dynamic For loop's scheduling overhead
// across grain sizes — the same axis internal/tune calibrates at
// startup. The body is a few arithmetic ops, so the numbers expose the
// per-block steal cost rather than useful work.

func benchFor(b *testing.B, grain int) {
	const n = 1 << 15
	workers := WorkerCount(0)
	sinks := NewPadded[int64](workers)
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(n, workers, grain, func(worker, i int) {
			sinks[worker].V += int64(i ^ (i >> 3))
		})
	}
	for w := range sinks {
		sink.Add(sinks[w].V)
	}
}

func BenchmarkForGrain16(b *testing.B)   { benchFor(b, 16) }
func BenchmarkForGrain64(b *testing.B)   { benchFor(b, 64) }
func BenchmarkForGrain256(b *testing.B)  { benchFor(b, 256) }
func BenchmarkForGrain1024(b *testing.B) { benchFor(b, 1024) }
