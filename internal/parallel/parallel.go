// Package parallel is the shared parallel runtime for every layer of
// the library: graph construction, file ingestion, the extraction
// kernel, the synthetic generators, and the analysis passes all
// schedule their work through it.
//
// It provides two parallel-for shapes — a dynamically scheduled one
// (For) that keeps skewed workloads balanced by letting workers steal
// fixed-size blocks, and a statically chunked one (ForChunks) for
// uniform per-element work where contiguous ranges maximize locality —
// plus the supporting primitives those loops need: a parallel prefix
// sum for CSR offset construction, per-worker edge buffers for
// lock-free generation and ingestion, and cache-line-padded counters
// for contention-free statistics.
//
// Centralizing the runtime means worker-count policy, grain tuning and
// instrumentation live in one place instead of being re-implemented
// per package (the seed carried three hand-rolled copies).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxParallelism is the effective parallelism ceiling: GOMAXPROCS, but
// never more than the physical CPUs the process may run on. CPU-bound
// loops gain nothing from oversubscribing cores — extra runnable
// goroutines only add preemption churn — so an inflated GOMAXPROCS
// (common in benchmarks and containers) is clamped.
func maxParallelism() int {
	w := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); w > c {
		w = c
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WorkerCount resolves a requested worker count: values <= 0 select the
// effective parallelism (GOMAXPROCS clamped to the physical CPU count).
// Explicit positive requests are honored as given.
func WorkerCount(workers int) int {
	if workers <= 0 {
		return maxParallelism()
	}
	return workers
}

// WorkersFor picks a worker count for n items with the given minimum
// chunk size, bounded by the effective parallelism. It returns at
// least 1.
func WorkersFor(n, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	w := maxParallelism()
	if max := (n + minChunk - 1) / minChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For executes fn(worker, i) for every i in [0, n), distributing blocks
// of grain consecutive indices to workers dynamically via an atomic
// block counter (the software analogue of the Cray XMT's dynamic loop
// scheduling the paper relies on). It blocks until all iterations
// complete. workers <= 0 selects GOMAXPROCS. The worker argument lets
// callers index per-worker scratch state without locking.
func For(n, workers, grain int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = WorkerCount(workers)
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	if workers > blocks {
		workers = blocks
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				b := next.Add(1) - 1
				if b >= int64(blocks) {
					return
				}
				lo := int(b) * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForChunks partitions [0, n) into one contiguous chunk per worker and
// executes fn(worker, lo, hi) on each. Static chunking suits loops with
// uniform per-element cost; use For when the work per index is skewed.
// workers <= 0 selects GOMAXPROCS; the worker count is clamped to n.
func ForChunks(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = WorkerCount(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForVertices runs fn(v) for v in [0, n) across statically chunked
// worker goroutines, the idiom of per-vertex passes over CSR arrays.
// Small loops (under the internal minimum chunk) run inline to avoid
// goroutine overhead.
func ForVertices(n int, fn func(v int)) {
	ForVerticesN(n, 0, fn)
}

// ForVerticesN is ForVertices with an explicit upper bound on worker
// goroutines, the hook that lets budget-leased callers (the service
// layer grants each job a worker lease) keep per-vertex passes inside
// their lease instead of spilling to machine width. workers <= 0
// selects the automatic count.
func ForVerticesN(n, workers int, fn func(v int)) {
	const minChunk = 2048
	w := WorkersFor(n, minChunk)
	if workers > 0 && w > workers {
		w = workers
	}
	ForChunks(n, w, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			fn(v)
		}
	})
}
