// Package verify provides chordality and maximality verification used by
// the test suite, the CLI tools, and the optional maximality-repair pass.
//
// Chordality is decided in O(V+E) with the classic two-step procedure:
// a Maximum Cardinality Search (Tarjan & Yannakakis) produces an
// ordering that is a perfect elimination ordering if and only if the
// graph is chordal, and a linear-time check validates the ordering.
package verify

import (
	"chordal/internal/graph"
	"chordal/internal/incremental"
)

// MCSOrder runs Maximum Cardinality Search and returns the visit order
// reversed, i.e. a candidate perfect elimination ordering (PEO): if the
// graph is chordal, every vertex is simplicial in the subgraph induced
// by itself and the vertices after it in the returned order.
func MCSOrder(g *graph.Graph) []int32 {
	return mcsOrder(g.NumVertices(), func(v int32) []int32 { return g.Neighbors(v) })
}

// MCSOrderAdj is MCSOrder over a slice-of-slices adjacency.
func MCSOrderAdj(adj [][]int32) []int32 {
	return mcsOrder(len(adj), func(v int32) []int32 { return adj[v] })
}

// mcsOrder is the shared MCS implementation: repeatedly pick an
// unvisited vertex with the most visited neighbors, using weight
// buckets for O(V+E) total time.
func mcsOrder(n int, nbrs func(int32) []int32) []int32 {
	weight := make([]int32, n)
	visited := make([]bool, n)

	// Bucket structure: doubly linked lists per weight.
	next := make([]int32, n)
	prev := make([]int32, n)
	head := make([]int32, n+1) // head[w] = first vertex with weight w
	for i := range head {
		head[i] = -1
	}
	pushBucket := func(v, w int32) {
		next[v] = head[w]
		prev[v] = -1
		if head[w] != -1 {
			prev[head[w]] = v
		}
		head[w] = v
	}
	removeBucket := func(v, w int32) {
		if prev[v] != -1 {
			next[prev[v]] = next[v]
		} else {
			head[w] = next[v]
		}
		if next[v] != -1 {
			prev[next[v]] = prev[v]
		}
	}
	for v := int32(0); v < int32(n); v++ {
		pushBucket(v, 0)
	}

	order := make([]int32, n)
	maxW := int32(0)
	for i := 0; i < n; i++ {
		for maxW > 0 && head[maxW] == -1 {
			maxW--
		}
		v := head[maxW]
		removeBucket(v, maxW)
		visited[v] = true
		// MCS visits in this sequence; the PEO is the reverse, so fill
		// from the back.
		order[n-1-i] = v
		for _, w := range nbrs(v) {
			if !visited[w] {
				removeBucket(w, weight[w])
				weight[w]++
				pushBucket(w, weight[w])
				if weight[w] > maxW {
					maxW = weight[w]
				}
			}
		}
	}
	return order
}

// IsPEO reports whether order is a perfect elimination ordering of the
// graph, using the linear-time accumulation check of Golumbic: for each
// vertex v, its later neighbors minus the earliest of them (its
// "parent" p) must all be adjacent to p.
func IsPEO(g *graph.Graph, order []int32) bool {
	return isPEO(g.NumVertices(), func(v int32) []int32 { return g.Neighbors(v) }, order)
}

// IsPEOAdj is IsPEO over a slice-of-slices adjacency.
func IsPEOAdj(adj [][]int32, order []int32) bool {
	return isPEO(len(adj), func(v int32) []int32 { return adj[v] }, order)
}

func isPEO(n int, nbrs func(int32) []int32, order []int32) bool {
	if len(order) != n {
		return false
	}
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	// required[p] accumulates vertices that must turn out to be
	// neighbors of p; checked when p is processed.
	required := make([][]int32, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		v := order[i]
		// Verify previously accumulated requirements against v's
		// actual neighborhood.
		if len(required[v]) > 0 {
			for _, w := range nbrs(v) {
				mark[w] = int32(i)
			}
			for _, w := range required[v] {
				if mark[w] != int32(i) {
					return false
				}
			}
			required[v] = nil
		}
		// Later neighbors of v; parent = the one earliest in the order.
		var parent int32 = -1
		var parentPos int32
		for _, w := range nbrs(v) {
			if pos[w] > int32(i) {
				if parent == -1 || pos[w] < parentPos {
					parent, parentPos = w, pos[w]
				}
			}
		}
		if parent == -1 {
			continue
		}
		for _, w := range nbrs(v) {
			if pos[w] > int32(i) && w != parent {
				required[parent] = append(required[parent], w)
			}
		}
	}
	return true
}

// IsChordal reports whether g is a chordal graph.
func IsChordal(g *graph.Graph) bool {
	return IsPEO(g, MCSOrder(g))
}

// IsChordalAdj reports whether the slice-of-slices adjacency is chordal.
func IsChordalAdj(adj [][]int32) bool {
	return IsPEOAdj(adj, MCSOrderAdj(adj))
}

// AdjFromGraph copies g into a mutable slice-of-slices adjacency, the
// representation used for incremental add-an-edge experiments.
func AdjFromGraph(g *graph.Graph) [][]int32 {
	n := g.NumVertices()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		adj[v] = append(make([]int32, 0, len(nb)+1), nb...)
	}
	return adj
}

// Scratch is the reusable per-worker state of the separator checks. It
// is an alias of incremental.Checker — the one implementation of the
// dynamic-chordal-graph separator criterion lives in
// internal/incremental; verify re-exports it so audit and test callers
// keep their historical entry point.
type Scratch = incremental.Checker

// NewScratch returns a Scratch for graphs with n vertices. threshold is
// the degree at or above which a vertex's marked neighborhood is cached
// for reuse across calls (0 picks a conservative default, negative
// disables caching).
func NewScratch(n, threshold int) *Scratch {
	return incremental.NewChecker(n, threshold)
}

// CanAddEdge is the package-level form of Scratch.CanAddEdge for
// one-off checks; callers on a hot path should hold a Scratch and call
// the method to reuse its epoch sets across edges.
func CanAddEdge(adj [][]int32, u, v int32, s *Scratch) bool {
	if s == nil {
		s = NewScratch(len(adj), -1)
	}
	return s.CanAddEdge(adj, u, v)
}

// MaximalityViolation is a rejected edge whose addition keeps the
// subgraph chordal, i.e. a witness that the subgraph is not maximal.
type MaximalityViolation struct {
	U, V int32
}

// AuditMaximality examines every edge of g absent from sub (a subgraph
// over the same vertex set) and returns those whose addition would keep
// sub chordal, stopping after limit violations (limit <= 0 means no
// limit). Each candidate is tested independently against sub as-is.
// Cost is O(missing · (V+E)) worst case; intended for validation.
func AuditMaximality(g, sub *graph.Graph, limit int) []MaximalityViolation {
	adj := AdjFromGraph(sub)
	scratch := NewScratch(len(adj), 0)
	var out []MaximalityViolation
	done := false
	g.Edges(func(u, v int32) {
		if done || sub.HasEdge(u, v) {
			return
		}
		if scratch.CanAddEdge(adj, u, v) {
			out = append(out, MaximalityViolation{U: u, V: v})
			if limit > 0 && len(out) >= limit {
				done = true
			}
		}
	})
	return out
}

// IsMaximalChordal reports whether sub is chordal and no edge of g can
// be added to it without breaking chordality.
func IsMaximalChordal(g, sub *graph.Graph) bool {
	if !IsChordal(sub) {
		return false
	}
	return len(AuditMaximality(g, sub, 1)) == 0
}
