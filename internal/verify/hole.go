package verify

// FindHole returns a chordless cycle of length >= 4 (a "hole")
// witnessing that the graph is not chordal, or nil if the graph is
// chordal. A witness turns every negative chordality verdict into a
// checkable certificate, which the tests and the partition baseline's
// diagnostics rely on.
//
// The search uses the classic characterization: a graph has a hole if
// and only if for some induced path a-b-c (a and c non-adjacent
// neighbors of b) the endpoints a and c remain connected after
// removing b and all of b's other neighbors. The recovered cycle —
// the connecting path plus a-b-c — may still carry chords, but every
// chord avoids b, so the sub-cycle on b's side is strictly smaller,
// still contains the induced path a-b-c, and therefore has length at
// least four; shrinking across chords terminates at a hole.
//
// Cost is O(Δ² · (V+E)) in the worst case; this is a verification and
// diagnostics utility, not a hot path, and it exits immediately on
// chordal inputs via the linear-time MCS test.
func FindHole(adj [][]int32) []int32 {
	if IsChordalAdj(adj) {
		return nil
	}
	n := len(adj)
	blocked := make([]bool, n)
	parent := make([]int32, n)
	for b := int32(0); b < int32(n); b++ {
		nb := adj[b]
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				a, c := nb[i], nb[j]
				if adjacentScan(adj, a, c) {
					continue
				}
				if cycle := holeThrough(adj, a, b, c, blocked, parent); cycle != nil {
					return cycle
				}
			}
		}
	}
	// Unreachable for a correct IsChordalAdj: a non-chordal graph has a
	// hole, and the hole's own middle vertex provides a working triple.
	return nil
}

// adjacentScan reports adjacency by scanning the shorter list.
func adjacentScan(adj [][]int32, a, b int32) bool {
	s := adj[a]
	if len(adj[b]) < len(s) {
		s = adj[b]
		a, b = b, a
	}
	for _, w := range s {
		if w == b {
			return true
		}
	}
	return false
}

// holeThrough searches for an a-c path avoiding b and N(b)\{a,c}; if
// one exists the resulting cycle is shrunk to a hole containing b.
// blocked and parent are caller-provided scratch of length |V|
// (contents irrelevant; fully reset here).
func holeThrough(adj [][]int32, a, b, c int32, blocked []bool, parent []int32) []int32 {
	for i := range blocked {
		blocked[i] = false
		parent[i] = -2
	}
	blocked[b] = true
	for _, w := range adj[b] {
		blocked[w] = true
	}
	blocked[a] = false
	blocked[c] = false

	parent[a] = -1
	queue := []int32{a}
	for len(queue) > 0 && parent[c] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range adj[u] {
			if !blocked[w] && parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	if parent[c] == -2 {
		return nil
	}
	// Cycle: c -> ... -> a (via parents), then b closes c-b-a.
	var cycle []int32
	for u := c; u != -1; u = parent[u] {
		cycle = append(cycle, u)
	}
	cycle = append(cycle, b)
	return shrinkAround(adj, cycle, b)
}

// shrinkAround removes chords from the cycle, always keeping the
// sub-cycle that contains keep. Because no chord is incident to keep
// and keep's cycle neighbors are non-adjacent, the kept side always
// has length >= 4, so the fixpoint is a hole.
func shrinkAround(adj [][]int32, cycle []int32, keep int32) []int32 {
	pos := make(map[int32]int, len(cycle))
	for {
		k := len(cycle)
		if k < 4 {
			return nil // defensive; see invariant above
		}
		for key := range pos {
			delete(pos, key)
		}
		for i, u := range cycle {
			pos[u] = i
		}
		ci, cj := -1, -1
	search:
		for i, u := range cycle {
			for _, w := range adj[u] {
				j, ok := pos[w]
				if !ok || j <= i {
					continue
				}
				if j-i == 1 || (i == 0 && j == k-1) {
					continue // cycle edge
				}
				ci, cj = i, j
				break search
			}
		}
		if ci == -1 {
			return cycle
		}
		// Split along the chord (ci, cj); keep the side with `keep`.
		inner := cycle[ci : cj+1]
		keepInInner := false
		for _, u := range inner {
			if u == keep {
				keepInInner = true
				break
			}
		}
		if keepInInner {
			cycle = append([]int32(nil), inner...)
		} else {
			outer := append([]int32(nil), cycle[cj:]...)
			outer = append(outer, cycle[:ci+1]...)
			cycle = outer
		}
	}
}

// IsHole reports whether the vertex sequence is a chordless cycle of
// length >= 4 in the given adjacency: consecutive vertices (cyclically)
// adjacent, all others non-adjacent, no repeats.
func IsHole(adj [][]int32, cycle []int32) bool {
	k := len(cycle)
	if k < 4 {
		return false
	}
	seen := make(map[int32]bool, k)
	for _, v := range cycle {
		if v < 0 || int(v) >= len(adj) || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			consecutive := j == i+1 || (i == 0 && j == k-1)
			if adjacentScan(adj, cycle[i], cycle[j]) != consecutive {
				return false
			}
		}
	}
	return true
}
