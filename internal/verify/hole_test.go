package verify

import (
	"testing"
	"testing/quick"

	"chordal/internal/xrand"
)

func adjFromEdges(n int, edges [][2]int32) [][]int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

func TestFindHoleChordalReturnsNil(t *testing.T) {
	cases := [][][2]int32{
		{},                                       // edgeless
		{{0, 1}, {1, 2}},                         // path
		{{0, 1}, {1, 2}, {0, 2}},                 // triangle
		{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, // chorded C4
	}
	for i, edges := range cases {
		if hole := FindHole(adjFromEdges(5, edges)); hole != nil {
			t.Fatalf("case %d: hole %v in chordal graph", i, hole)
		}
	}
}

func TestFindHoleOnCycles(t *testing.T) {
	for _, k := range []int{4, 5, 6, 9} {
		edges := make([][2]int32, k)
		for i := 0; i < k; i++ {
			edges[i] = [2]int32{int32(i), int32((i + 1) % k)}
		}
		adj := adjFromEdges(k, edges)
		hole := FindHole(adj)
		if hole == nil {
			t.Fatalf("C%d: no hole found", k)
		}
		if !IsHole(adj, hole) {
			t.Fatalf("C%d: returned %v is not a hole", k, hole)
		}
		if len(hole) != k {
			t.Fatalf("C%d: hole length %d", k, len(hole))
		}
	}
}

func TestFindHoleWithChords(t *testing.T) {
	// C6 plus one chord (0-3): two C4-ish faces remain chordless.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}
	adj := adjFromEdges(6, edges)
	hole := FindHole(adj)
	if hole == nil {
		t.Fatal("no hole found in chord-split C6")
	}
	if !IsHole(adj, hole) {
		t.Fatalf("%v is not a hole", hole)
	}
	if len(hole) != 4 {
		t.Fatalf("expected a 4-hole, got length %d", len(hole))
	}
}

func TestFindHoleAgreesWithIsChordal(t *testing.T) {
	// Property: FindHole returns nil iff IsChordalAdj, and returned
	// witnesses always validate.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 4 + int(nRaw%40)
		m := int(mRaw % 300)
		rng := xrand.NewXoshiro256(seed)
		adj := make([][]int32, n)
		has := map[[2]int32]bool{}
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if has[[2]int32{u, v}] {
				continue
			}
			has[[2]int32{u, v}] = true
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
		hole := FindHole(adj)
		if IsChordalAdj(adj) {
			return hole == nil
		}
		return hole != nil && IsHole(adj, hole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestIsHoleRejects(t *testing.T) {
	adj := adjFromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {4, 5}})
	cases := [][]int32{
		{0, 1, 2},    // too short
		{0, 1, 2, 3}, // has chord 0-2
		{0, 1, 1, 2}, // repeat
		{0, 1, 2, 9}, // out of range
		{0, 1, 4, 5}, // not a cycle
	}
	for i, c := range cases {
		if IsHole(adj, c) {
			t.Fatalf("case %d accepted: %v", i, c)
		}
	}
	c4 := adjFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if !IsHole(c4, []int32{0, 1, 2, 3}) {
		t.Fatal("valid hole rejected")
	}
}
