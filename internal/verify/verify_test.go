package verify

import (
	"testing"
	"testing/quick"

	"chordal/internal/graph"
	"chordal/internal/xrand"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestIsChordalKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"empty", graph.NewBuilder(0).Build(), true},
		{"edgeless", graph.NewBuilder(5).Build(), true},
		{"single-edge", path(2), true},
		{"path-10", path(10), true},
		{"triangle", cycle(3), true},
		{"C4", cycle(4), false},
		{"C5", cycle(5), false},
		{"C6", cycle(6), false},
		{"K4", complete(4), true},
		{"K7", complete(7), true},
		{"C4-with-chord", buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}), true},
		{"C5-one-chord", buildGraph(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}), false},
		{"C5-two-chords", buildGraph(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {0, 3}}), true},
		// K3,3 contains C4s.
		{"K33", buildGraph(6, [][2]int32{{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}), false},
		// Two disjoint triangles: chordality is per-component.
		{"two-triangles", buildGraph(6, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}), true},
		// Triangle plus separate C4.
		{"triangle+C4", buildGraph(7, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {5, 6}, {6, 3}}), false},
	}
	for _, c := range cases {
		if got := IsChordal(c.g); got != c.want {
			t.Errorf("%s: IsChordal = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMCSOrderIsPermutation(t *testing.T) {
	g := complete(10)
	order := MCSOrder(g)
	if len(order) != 10 {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, 10)
	for _, v := range order {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid order %v", order)
		}
		seen[v] = true
	}
}

func TestIsPEORejectsWrongLength(t *testing.T) {
	if IsPEO(path(4), []int32{0, 1}) {
		t.Fatal("short order accepted")
	}
}

func TestIsPEOKnownOrders(t *testing.T) {
	// For the chord-split C4 {0-1-2-3-0, 0-2}: the order [1,3,0,2] is
	// a PEO (1 and 3 are simplicial); [0,1,2,3] is not, since 0's later
	// neighbors {1,2,3}... 0's neighbors are 1,2,3: 1-2 edge exists,
	// 1-3 does not -> not a PEO.
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if !IsPEO(g, []int32{1, 3, 0, 2}) {
		t.Fatal("valid PEO rejected")
	}
	if IsPEO(g, []int32{0, 1, 2, 3}) {
		t.Fatal("invalid PEO accepted")
	}
}

func TestAdjFromGraph(t *testing.T) {
	g := complete(4)
	adj := AdjFromGraph(g)
	if len(adj) != 4 {
		t.Fatalf("adj size %d", len(adj))
	}
	for v := range adj {
		if len(adj[v]) != 3 {
			t.Fatalf("vertex %d degree %d", v, len(adj[v]))
		}
	}
	// Mutating the copy must not affect the graph.
	adj[0] = append(adj[0], 0)
	if g.Degree(0) != 3 {
		t.Fatal("AdjFromGraph aliases graph storage")
	}
}

func TestCanAddEdgeKnownCases(t *testing.T) {
	scratch := NewScratch(8, 0)
	// Path 0-1-2: closing 0-2 forms a triangle: allowed.
	adj := AdjFromGraph(path(3))
	if !CanAddEdge(adj, 0, 2, scratch) {
		t.Fatal("triangle closure rejected")
	}
	// Path 0-1-2-3: closing 0-3 forms C4: not allowed.
	adj = AdjFromGraph(path(4))
	if CanAddEdge(adj, 0, 3, scratch) {
		t.Fatal("C4 closure accepted")
	}
	// Disconnected vertices: always allowed.
	adj = AdjFromGraph(buildGraph(4, [][2]int32{{0, 1}, {2, 3}}))
	if !CanAddEdge(adj, 0, 2, scratch) {
		t.Fatal("cross-component edge rejected")
	}
	// Two vertex-disjoint paths between endpoints, common neighborhood
	// empty: adding creates a chordless cycle.
	adj = AdjFromGraph(buildGraph(6, [][2]int32{{0, 1}, {1, 5}, {0, 2}, {2, 3}, {3, 5}}))
	if CanAddEdge(adj, 0, 5, scratch) {
		t.Fatal("long-cycle closure accepted")
	}
	// A nil scratch allocates internally and agrees.
	if CanAddEdge(adj, 0, 5, nil) {
		t.Fatal("nil-scratch call disagrees")
	}
}

// referenceCanAddEdge is the pre-epoch-set implementation of the
// separator criterion, kept verbatim as the oracle for the equivalence
// property test: mark-and-restore over a plain []int32 scratch.
func referenceCanAddEdge(adj [][]int32, u, v int32, scratch []int32) bool {
	const (
		inSep   = 1
		visited = 2
	)
	for _, x := range adj[u] {
		scratch[x] = inSep
	}
	sep := make([]int32, 0, len(adj[u]))
	for _, x := range adj[v] {
		if scratch[x] == inSep {
			sep = append(sep, x)
		}
	}
	for _, x := range adj[u] {
		scratch[x] = 0
	}
	for _, x := range sep {
		scratch[x] = inSep
	}
	queue := []int32{u}
	seen := []int32{u}
	scratch[u] = visited
	reached := false
	for len(queue) > 0 && !reached {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, y := range adj[x] {
			if y == v {
				reached = true
				break
			}
			if scratch[y] == 0 {
				scratch[y] = visited
				seen = append(seen, y)
				queue = append(queue, y)
			}
		}
	}
	for _, x := range seen {
		scratch[x] = 0
	}
	for _, x := range sep {
		scratch[x] = 0
	}
	return !reached
}

// TestCanAddEdgeMatchesReference pins the epoch-set rewrite against the
// original mark-and-restore implementation on random graphs, with the
// Scratch reused (dirty) across every query — the reuse pattern of the
// border-admission and repair passes.
func TestCanAddEdgeMatchesReference(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 4 + int(nRaw%60)
		rng := xrand.NewXoshiro256(seed)
		adj := make([][]int32, n)
		ref := make([]int32, n)
		sc := NewScratch(n, 4) // low threshold: exercise the cache
		for k := 0; k < int(mRaw%300); k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v || contains(adj[u], v) {
				continue
			}
			want := referenceCanAddEdge(adj, u, v, ref)
			if sc.CanAddEdge(adj, u, v) != want {
				return false
			}
			// HasCommonNeighbor must match a direct intersection scan.
			common := false
			for _, x := range adj[u] {
				if contains(adj[v], x) {
					common = true
					break
				}
			}
			if sc.HasCommonNeighbor(adj, u, v) != common {
				return false
			}
			if want {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				sc.Invalidate()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCanAddEdgeMatchesFullRecheck(t *testing.T) {
	// Property: the separator criterion agrees with a full chordality
	// re-check on random chordal graphs. Build chordal graphs by
	// extracting from random graphs via repeated safe insertions.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 4 + int(nRaw%40)
		rng := xrand.NewXoshiro256(seed)
		// Grow a random chordal graph by inserting random safe edges.
		adj := make([][]int32, n)
		scratch := NewScratch(n, 0)
		for k := 0; k < int(mRaw%200); k++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v || contains(adj[u], v) {
				continue
			}
			if scratch.CanAddEdge(adj, u, v) {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				if !IsChordalAdj(adj) {
					return false // criterion admitted a bad edge
				}
			} else {
				// Verify the rejection: adding must break chordality.
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				broken := !IsChordalAdj(adj)
				adj[u] = adj[u][:len(adj[u])-1]
				adj[v] = adj[v][:len(adj[v])-1]
				if !broken {
					return false // criterion rejected a good edge
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func contains(s []int32, x int32) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

func TestCanAddEdgeScratchReuse(t *testing.T) {
	// A Scratch carries no state between calls: the same query must
	// answer identically on a fresh scratch and on one dirtied by
	// unrelated queries against other graphs.
	adj := AdjFromGraph(complete(6))
	adj[0] = adj[0][:0] // detach 0: then 0-1 is addable
	adj[1] = adj[1][:4]
	fresh := NewScratch(6, 0)
	want := fresh.CanAddEdge(adj, 0, 1)
	dirty := NewScratch(6, 0)
	dirty.CanAddEdge(AdjFromGraph(path(6)), 0, 5)
	dirty.HasCommonNeighbor(AdjFromGraph(complete(6)), 2, 3)
	if dirty.CanAddEdge(adj, 0, 1) != want {
		t.Fatal("dirty scratch changed the answer")
	}
}

func TestAuditMaximality(t *testing.T) {
	// Take C4: the extracted chordal subgraph 0-1-2-3 (path) is
	// maximal, so the audit of a FULL path against C4 finds nothing;
	// but a 2-edge subgraph has addable edges.
	g := cycle(4)
	full := path(4)
	if v := AuditMaximality(g, full, 0); len(v) != 0 {
		t.Fatalf("maximal subgraph audited %d violations", len(v))
	}
	sub := buildGraph(4, [][2]int32{{0, 1}, {1, 2}})
	v := AuditMaximality(g, sub, 0)
	if len(v) == 0 {
		t.Fatal("non-maximal subgraph audited clean")
	}
	// Limit respected.
	if v := AuditMaximality(g, buildGraph(4, nil), 2); len(v) != 2 {
		t.Fatalf("limit ignored: %d", len(v))
	}
}

func TestIsMaximalChordal(t *testing.T) {
	g := cycle(4)
	if !IsMaximalChordal(g, path(4)) {
		t.Fatal("path-in-C4 should be maximal chordal")
	}
	if IsMaximalChordal(g, buildGraph(4, [][2]int32{{0, 1}})) {
		t.Fatal("single edge in C4 is not maximal")
	}
	if IsMaximalChordal(g, g) {
		t.Fatal("C4 itself is not chordal")
	}
}

func TestMCSOnAdjAgreesWithGraph(t *testing.T) {
	g := complete(8)
	a := MCSOrder(g)
	b := MCSOrderAdj(AdjFromGraph(g))
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	// Both must be PEOs of K8 (any order is).
	if !IsPEO(g, a) || !IsPEOAdj(AdjFromGraph(g), b) {
		t.Fatal("MCS order not a PEO of K8")
	}
}
