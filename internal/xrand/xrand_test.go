package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for the standard SplitMix64 with seed 0.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewXoshiro256(8)
	same := 0
	a = NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewXoshiro256(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewXoshiro256(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewXoshiro256(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	// Frequency test over a small modulus, checking Lemire rejection
	// removes bias.
	r := NewXoshiro256(4)
	const n, draws = 10, 1000000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := NewXoshiro256(5)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewXoshiro256(6)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestJumpDisjoint(t *testing.T) {
	// After a jump, the streams should not overlap for practical
	// lengths: compare prefixes.
	a := NewXoshiro256(9)
	b := NewXoshiro256(9)
	b.Jump()
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 10000; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("jumped stream collided %d times with base prefix", collisions)
	}
}

func TestStreamsStable(t *testing.T) {
	s1 := Streams(11, 4)
	s2 := Streams(11, 4)
	for i := range s1 {
		for j := 0; j < 100; j++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("stream %d not reproducible", i)
			}
		}
	}
	// Stream i of a larger set matches stream i of a smaller set.
	a := Streams(11, 2)
	b := Streams(11, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 100; j++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("stream %d depends on total stream count", i)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewXoshiro256(12)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid entry %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Shuffling preserves the multiset.
	f := func(seed uint64, raw []byte) bool {
		r := NewXoshiro256(seed)
		vals := make([]int, len(raw))
		counts := map[byte]int{}
		for i, b := range raw {
			vals[i] = int(b)
			counts[b]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			counts[byte(v)]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependent(t *testing.T) {
	r := NewXoshiro256(13)
	child := r.Split()
	// The parent advanced; both streams should still behave sanely.
	if child == nil {
		t.Fatal("nil child")
	}
	a, b := r.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("parent and child emitted identical first values")
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
