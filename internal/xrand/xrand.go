// Package xrand provides small, fast, deterministic pseudo-random number
// generators suitable for parallel graph generation.
//
// The package offers two generators:
//
//   - SplitMix64: a tiny 64-bit generator used mainly for seeding.
//   - Xoshiro256: xoshiro256**, a high-quality general-purpose generator.
//
// Both are deterministic given a seed, and Xoshiro256 supports Jump, which
// advances the state by 2^128 steps. Jump lets a driver hand each worker
// goroutine an independent, non-overlapping stream derived from a single
// seed, so parallel generation is reproducible regardless of scheduling.
package xrand

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// It is primarily used to expand a single user seed into the larger state
// vectors required by Xoshiro256. The zero value is a valid generator
// seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator of Blackman and
// Vigna. It has a period of 2^256-1 and passes all common statistical
// batteries. It must be created with NewXoshiro256 (an all-zero state is
// invalid and is corrected by the constructor).
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed
// using SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be a fixed point; SplitMix64 cannot emit
	// four zeros in a row from any seed, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17

	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := x.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, generated with the Marsaglia polar method.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// jumpPoly is the characteristic polynomial used by Jump.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps. Calling Jump k times on
// independent copies of the same generator yields k non-overlapping
// subsequences each of length 2^128.
func (x *Xoshiro256) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Split returns a new generator seeded from this one's stream. The child
// is statistically independent for practical purposes and the parent
// advances by one step. Split is cheaper than Jump and sufficient when
// strict stream-disjointness is not required.
func (x *Xoshiro256) Split() *Xoshiro256 {
	return NewXoshiro256(x.Uint64())
}

// Streams returns n generators with pairwise disjoint subsequences, all
// derived from seed. Stream i is the base generator jumped i times, so
// the assignment of streams to workers is stable across runs.
func Streams(seed uint64, n int) []*Xoshiro256 {
	out := make([]*Xoshiro256, n)
	base := NewXoshiro256(seed)
	for i := 0; i < n; i++ {
		cp := *base
		out[i] = &cp
		base.Jump()
	}
	return out
}

// Perm returns a pseudo-random permutation of [0, n) as an []int32,
// using the Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the elements of a slice using the
// provided swap function, in the manner of math/rand.Shuffle.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}
