package chordal_test

import (
	"context"
	"strings"
	"testing"

	"chordal"
)

// FuzzStream feeds arbitrary byte streams through the NDJSON delta
// parser into a live session: whatever the bytes, the session must not
// panic, and after every repair pass the maintained subgraph must be
// chordal. Malformed lines are skipped exactly as the CLI and service
// skip them; the vertex cap keeps hostile ids from allocating the id
// space.
func FuzzStream(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n0 2\n"))
	f.Add([]byte("0 1\n1 2\n2 3\n0 3\n0 2\n"))
	f.Add([]byte("{\"u\":0,\"v\":1}\n{\"u\":1,\"v\":0}\nnot a delta\n5 5\n-3 9\n"))
	f.Add([]byte("# comment\n\n7 99999999\n3 4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}}
		s, err := chordal.OpenStream(context.Background(), spec, chordal.StreamConfig{
			MaxVertices: 4096,
			RepairEvery: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		pushed := 0
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			d, err := chordal.ParseEdgeDelta(line)
			if err != nil {
				continue
			}
			if _, err := s.Push(ctx, d.U, d.V); err != nil {
				t.Fatal(err)
			}
			if pushed++; pushed > 512 {
				break
			}
		}
		if _, err := s.Repair(ctx); err != nil {
			t.Fatal(err)
		}
		// The maintained (online) subgraph must be chordal after repair.
		edges := s.Maintained()
		us := make([]int32, len(edges))
		vs := make([]int32, len(edges))
		for i, e := range edges {
			us[i], vs[i] = e.U, e.V
		}
		st := s.Stats()
		if sub := chordal.BuildFromEdges(st.Vertices, us, vs); !chordal.IsChordal(sub) {
			t.Fatalf("maintained subgraph not chordal after repair (%d edges)", len(edges))
		}
		res, err := s.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !chordal.IsChordal(res.Subgraph) {
			t.Fatal("canonical close result not chordal")
		}
	})
}
