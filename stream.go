package chordal

// This file threads the streaming mode through the library layer: a
// stream-mode Spec opens a long-lived session (OpenStream) that admits
// or rejects edge deltas online against a maintained chordal subgraph —
// the incremental.Maintainer kernel shared with the batch engines — and
// emits typed EventAdmit/EventDefer/EventRepair events as decisions
// land. Closing the session produces the canonical result: the spec's
// batch engine runs over the accumulated input edge set, so the final
// subgraph is independent of delta arrival order and byte-identical to
// a batch run of the same spec on the same graph (the online view is
// exact but greedy — it depends on arrival order, so it narrates the
// stream rather than defining the artifact; see DESIGN.md §13).

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"chordal/internal/graph"
	"chordal/internal/incremental"
	"chordal/internal/verify"
)

// Spec execution modes. Batch is the zero value and normalizes to the
// empty string, keeping pre-existing specs and canonical keys
// byte-identical; only "stream" is ever spelled out.
const (
	// ModeBatch runs the spec end to end over a fully acquired input
	// (Spec.Run).
	ModeBatch = "batch"
	// ModeStream opens a long-lived session fed edge deltas
	// (OpenStream); Close produces the canonical batch result over the
	// accumulated edges.
	ModeStream = "stream"
)

// AdmitReason explains one stream admission decision; the values are
// the incremental package's stable wire strings.
type AdmitReason = incremental.Reason

// The admission rulings a session can report.
const (
	// AdmitAccepted: the exact separator criterion accepted the edge.
	AdmitAccepted = incremental.ReasonAdmitted
	// AdmitBridge: the endpoints were in different components (fast
	// path; a bridge lies on no cycle).
	AdmitBridge = incremental.ReasonBridge
	// AdmitRepaired: a previously deferred edge admitted by a repair
	// pass.
	AdmitRepaired = incremental.ReasonRepaired
	// AdmitPresent: the edge is already in the maintained subgraph.
	AdmitPresent = incremental.ReasonPresent
	// AdmitDeferred: rejected for now and queued for repair.
	AdmitDeferred = incremental.ReasonDeferred
	// AdmitInvalid: a self loop, a negative endpoint, or an endpoint
	// beyond the session's vertex cap.
	AdmitInvalid = incremental.ReasonInvalid
	// AdmitOverflow: rejected while the deferred queue was at the
	// spec's MaxDeferred bound — dropped, never retested by repair.
	AdmitOverflow = incremental.ReasonOverflow
)

// DefaultMaxStreamVertices bounds a session's vertex universe when
// StreamConfig.MaxVertices is zero: the universe grows on demand as
// deltas name new vertices, and the cap keeps one hostile delta (say
// u = 2^31-2) from allocating the whole id space.
const DefaultMaxStreamVertices = 1 << 24

// StreamConfig carries the runtime parameters of one session. None of
// them is part of the spec's identity: they size and pace the session
// without changing what the canonical result is.
type StreamConfig struct {
	// Vertices is the initial vertex universe (ids 0..Vertices-1). The
	// universe grows on demand beyond it; set it when the final vertex
	// count matters (isolated vertices exist only if the universe names
	// them).
	Vertices int
	// MaxVertices caps on-demand growth; 0 means
	// DefaultMaxStreamVertices. Deltas beyond the cap are ruled invalid.
	MaxVertices int
	// RepairEvery runs a repair pass automatically after this many
	// pushed deltas; 0 repairs only on explicit Repair calls and at
	// Close (when the spec enables repair).
	RepairEvery int
	// Observer receives the session's event stream: admit/defer per
	// delta, repair-pass summaries, and the Close-time extract/verify
	// stage events.
	Observer Observer
}

// StreamEngine is implemented by engines that can run as a streaming
// session. The batch Extract and the session share one admission
// kernel (internal/incremental), so an engine opts in by describing how
// to seed, grow, and finalize a session — not by reimplementing
// admission.
type StreamEngine interface {
	Engine
	// OpenStream starts a session with the engine's declarative
	// parameters and the runtime session config.
	OpenStream(ctx context.Context, cfg EngineConfig, sc StreamConfig) (StreamSession, error)
}

// StreamSession is the engine-level state of one streaming run: the
// maintained chordal subgraph plus whatever the engine needs to
// finalize. Sessions are single-owner; the Stream wrapper serializes
// access.
type StreamSession interface {
	// Admit applies one edge delta to the maintained subgraph.
	Admit(u, v int32) (bool, AdmitReason)
	// Repair retests deferred edges until a pass admits nothing,
	// returning the edges admitted (in admission order).
	Repair(ctx context.Context) ([]Edge, error)
	// Edges returns the maintained subgraph's edges with U < V in
	// (U, V) order — the online view, not the canonical result.
	Edges() []Edge
	// Vertices is the current universe size; EdgeCount and
	// DeferredCount size the maintained subgraph and the repair queue.
	Vertices() int
	EdgeCount() int
	DeferredCount() int
	// Finalize reconstructs the accumulated input graph (every distinct
	// valid delta) and runs the engine's batch extraction over it,
	// returning the input and the canonical engine result.
	Finalize(ctx context.Context) (*Graph, *EngineResult, error)
}

// OpenStream opens a streaming session for a stream-mode spec. The
// spec is normalized and validated exactly as for Run; its canonical
// key is the session's identity across the library, the CLI, and the
// service.
func OpenStream(ctx context.Context, s Spec, cfg StreamConfig) (*Stream, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Mode != ModeStream {
		return nil, fmt.Errorf("chordal: OpenStream needs a stream-mode spec (set Mode: %q)", ModeStream)
	}
	canon, err := n.Canonical()
	if err != nil {
		return nil, err
	}
	eng, ok := LookupEngine(n.Engine)
	if !ok {
		return nil, fmt.Errorf("chordal: spec: unknown engine %q", n.Engine)
	}
	se, ok := eng.(StreamEngine)
	if !ok {
		return nil, fmt.Errorf("chordal: spec: engine %q does not support streaming", n.Engine)
	}
	ecfg := n.EngineConfig
	ecfg.Observer = cfg.Observer
	sess, err := se.OpenStream(ctx, ecfg, cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{spec: n, canonical: canon, cfg: cfg, sess: sess}, nil
}

// StreamStats snapshots a session's counters. Admitted counts deltas
// accepted at push time; Repaired counts deferred edges later admitted
// by repair passes; Deferred is the queue still awaiting one.
type StreamStats struct {
	// Pushed counts every delta received, valid or not.
	Pushed int64 `json:"pushed"`
	// Admitted counts deltas accepted online at push time (reasons
	// admitted and bridge).
	Admitted int64 `json:"admitted"`
	// Repaired counts deferred edges admitted by repair passes;
	// Repairs counts the passes.
	Repaired int64 `json:"repaired"`
	Repairs  int64 `json:"repairs"`
	// Deferred is the current repair-queue length; Duplicates and
	// Invalid count deltas ruled present / invalid.
	Deferred   int64 `json:"deferred"`
	Duplicates int64 `json:"duplicates"`
	Invalid    int64 `json:"invalid"`
	// Overflowed counts deltas dropped because the deferred queue was
	// at the spec's MaxDeferred bound (0 when unbounded).
	Overflowed int64 `json:"overflowed,omitempty"`
	// Vertices is the session's vertex universe; SubgraphEdges the
	// maintained (online) chordal edge count.
	Vertices      int `json:"vertices"`
	SubgraphEdges int `json:"subgraphEdges"`
}

// StreamResult is the outcome of closing a session: the accumulated
// input graph, the canonical final subgraph, and the JSON-ready report.
type StreamResult struct {
	// Input is the graph accumulated from every distinct valid delta.
	Input *Graph
	// Subgraph is the canonical final chordal subgraph — the spec's
	// batch engine run over Input, so it is independent of the order
	// deltas arrived in and byte-identical to a batch run of the same
	// spec on the same graph.
	Subgraph *Graph
	// Report is the machine-readable summary.
	Report StreamReport
}

// Stream is one live streaming session: a stream-mode Spec bound to an
// engine session, with event emission, repair cadence, and the
// Close-time canonical extraction. Safe for concurrent use; decisions
// are serialized in push order.
type Stream struct {
	mu        sync.Mutex
	spec      Spec
	canonical string
	cfg       StreamConfig
	sess      StreamSession
	seq       int64
	sincePush int
	stats     StreamStats
	closed    bool
	result    *StreamResult
}

// Spec returns the session's normalized spec.
func (s *Stream) Spec() Spec { return s.spec }

// Canonical returns the session's identity — the stream-mode spec's
// canonical key, shared with the CLI and the service.
func (s *Stream) Canonical() string { return s.canonical }

// emit delivers one event to the session observer, if any.
func (s *Stream) emit(ev Event) {
	if s.cfg.Observer != nil {
		s.cfg.Observer(ev)
	}
}

// ErrStreamClosed rejects operations on a closed session.
var ErrStreamClosed = fmt.Errorf("chordal: stream session is closed")

// Push applies one edge delta, returning the decision (also emitted as
// an admit/defer event). When the session's RepairEvery cadence is due,
// the repair pass runs before Push returns, so its re-admissions are
// already reflected in Stats.
func (s *Stream) Push(ctx context.Context, u, v int32) (StreamDelta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return StreamDelta{}, ErrStreamClosed
	}
	ok, reason := s.sess.Admit(u, v)
	s.seq++
	s.stats.Pushed++
	switch reason {
	case AdmitAccepted, AdmitBridge:
		s.stats.Admitted++
	case AdmitPresent:
		s.stats.Duplicates++
	case AdmitInvalid:
		s.stats.Invalid++
	case AdmitOverflow:
		s.stats.Overflowed++
	}
	d := StreamDelta{Seq: s.seq, U: u, V: v, Accepted: ok, Reason: string(reason)}
	s.emit(newDeltaEvent(d))
	if s.cfg.RepairEvery > 0 {
		if s.sincePush++; s.sincePush >= s.cfg.RepairEvery {
			if _, err := s.repairLocked(ctx); err != nil {
				return d, err
			}
		}
	}
	return d, nil
}

// Repair retests the deferred queue until a pass admits nothing,
// emitting an admit event (reason "repaired") per re-admitted edge and
// one repair summary event. It returns how many edges were admitted.
func (s *Stream) Repair(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStreamClosed
	}
	return s.repairLocked(ctx)
}

// repairLocked is Repair with s.mu held.
func (s *Stream) repairLocked(ctx context.Context) (int, error) {
	s.sincePush = 0
	admitted, err := s.sess.Repair(ctx)
	s.stats.Repairs++
	s.stats.Repaired += int64(len(admitted))
	for _, e := range admitted {
		s.seq++
		s.emit(newDeltaEvent(StreamDelta{
			Seq: s.seq, U: e.U, V: e.V, Accepted: true, Reason: string(AdmitRepaired),
		}))
	}
	s.emit(newRepairEvent(len(admitted)))
	return len(admitted), err
}

// Stats snapshots the session counters.
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked builds the counter snapshot; callers hold s.mu.
func (s *Stream) statsLocked() StreamStats {
	st := s.stats
	st.Deferred = int64(s.sess.DeferredCount())
	st.Vertices = s.sess.Vertices()
	st.SubgraphEdges = s.sess.EdgeCount()
	return st
}

// Maintained returns the online subgraph's edges (U < V, sorted) — the
// maintained view the admit/defer events narrate, distinct from the
// canonical result Close produces.
func (s *Stream) Maintained() []Edge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Edges()
}

// Close finalizes the session: a last repair pass when the spec enables
// repair (so the online event stream reaches its fixpoint), then the
// canonical extraction — the spec's batch engine over the accumulated
// input — and the spec's verify stage on its result. Close is
// idempotent: repeated calls return the first result.
func (s *Stream) Close(ctx context.Context) (*StreamResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.result == nil {
			return nil, ErrStreamClosed
		}
		return s.result, nil
	}
	if s.spec.Repair {
		if _, err := s.repairLocked(ctx); err != nil {
			return nil, err
		}
	}
	stats := s.statsLocked()

	s.emit(newStageEvent("extract"))
	input, er, err := s.sess.Finalize(ctx)
	if err != nil {
		return nil, err
	}
	rep := StreamReport{
		Spec:      s.spec,
		Canonical: s.canonical,
		Stream:    stats,
	}
	st := ComputeStats(input)
	rep.Input = ReportInput{
		Vertices:  st.Vertices,
		Edges:     st.Edges,
		AvgDegree: st.AvgDegree,
		MaxDegree: st.MaxDegree,
	}
	ex := &ReportExtraction{Engine: s.spec.Engine, ChordalEdges: er.Subgraph.NumEdges()}
	if st.Edges > 0 {
		ex.EdgesKeptPct = 100 * float64(ex.ChordalEdges) / float64(st.Edges)
	}
	if r := er.Extraction; r != nil {
		ex.Iterations = len(r.Iterations)
		ex.Variant = variantName(r.Variant)
		ex.Schedule = scheduleName(r.Schedule)
		ex.RepairedEdges = r.RepairedEdges
		ex.StitchedEdges = r.StitchedEdges
	}
	rep.Extraction = ex
	if er.Tuning != nil {
		t := *er.Tuning
		rep.Tuning = &t
	}

	if s.spec.Verify {
		s.emit(newStageEvent("verify"))
		v := &ReportVerify{Chordal: verify.IsChordal(er.Subgraph)}
		if v.Chordal && input.NumEdges() <= maxAuditEdges {
			v.MaximalityAudited = true
			v.ReAddableEdges = len(verify.AuditMaximality(input, er.Subgraph, 10))
		}
		rep.Verify = v
		s.emit(newVerifyEvent(v.Chordal, v.MaximalityAudited, v.ReAddableEdges))
	}

	s.result = &StreamResult{Input: input, Subgraph: er.Subgraph, Report: rep}
	s.closed = true
	return s.result, nil
}

// EdgeDelta is one streamed edge-insertion request, the unit of the
// NDJSON wire format shared by `chordal -stream` and the service's
// POST /v1/streams/{id}/edges.
type EdgeDelta struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// ParseEdgeDelta parses one delta line: a JSON object {"u":1,"v":2} or
// two whitespace-separated decimal vertex ids ("1 2"). Callers skip
// blank and #-comment lines themselves (the CLI and service both do).
func ParseEdgeDelta(line string) (EdgeDelta, error) {
	s := strings.TrimSpace(line)
	if s == "" {
		return EdgeDelta{}, fmt.Errorf("chordal: empty edge delta")
	}
	if s[0] == '{' {
		var d EdgeDelta
		if err := json.Unmarshal([]byte(s), &d); err != nil {
			return EdgeDelta{}, fmt.Errorf("chordal: bad edge delta %q: %w", s, err)
		}
		return d, nil
	}
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return EdgeDelta{}, fmt.Errorf("chordal: bad edge delta %q (want {\"u\":..,\"v\":..} or \"u v\")", s)
	}
	u, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return EdgeDelta{}, fmt.Errorf("chordal: bad edge delta %q: %w", s, err)
	}
	v, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return EdgeDelta{}, fmt.Errorf("chordal: bad edge delta %q: %w", s, err)
	}
	return EdgeDelta{U: int32(u), V: int32(v)}, nil
}

// parallelStreamSession is the parallel engine's streaming session: the
// shared admission kernel over a growable universe, finalized by the
// engine's own batch Extract.
type parallelStreamSession struct {
	cfg EngineConfig
	m   *incremental.Maintainer
	// used is the vertex universe the session reports and finalizes
	// with: the configured initial size, extended to the largest vertex
	// a delta actually named (the maintainer's capacity grows by
	// doubling and may overshoot; that overshoot is invisible here).
	used        int
	maxVertices int
}

// OpenStream implements StreamEngine: the session shares the engine's
// declarative parameters (repair, verify and worker width apply to the
// Close-time extraction; DegreeThreshold seeds the admission kernel's
// hub cache).
func (parallelEngine) OpenStream(ctx context.Context, cfg EngineConfig, sc StreamConfig) (StreamSession, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	maxV := sc.MaxVertices
	if maxV <= 0 {
		maxV = DefaultMaxStreamVertices
	}
	if sc.Vertices < 0 {
		return nil, fmt.Errorf("chordal: stream: vertices %d must be >= 0", sc.Vertices)
	}
	if sc.Vertices > maxV {
		return nil, fmt.Errorf("chordal: stream: vertices %d exceeds the cap %d", sc.Vertices, maxV)
	}
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	capacity := max(sc.Vertices, 256)
	capacity = min(capacity, maxV)
	m := incremental.New(capacity, opts.DegreeThreshold)
	m.SetMaxDeferred(cfg.MaxDeferred)
	return &parallelStreamSession{
		cfg:         cfg,
		m:           m,
		used:        sc.Vertices,
		maxVertices: maxV,
	}, nil
}

// Admit implements StreamSession: grow the universe on demand (within
// the cap), then delegate to the shared kernel.
func (s *parallelStreamSession) Admit(u, v int32) (bool, AdmitReason) {
	if u < 0 || v < 0 || u == v {
		return false, AdmitInvalid
	}
	hi := int(max(u, v)) + 1
	if hi > s.maxVertices {
		return false, AdmitInvalid
	}
	if hi > s.m.Vertices() {
		s.m.Grow(min(max(2*s.m.Vertices(), hi), s.maxVertices))
	}
	if hi > s.used {
		s.used = hi
	}
	return s.m.Admit(u, v)
}

// Repair implements StreamSession.
func (s *parallelStreamSession) Repair(ctx context.Context) ([]Edge, error) {
	admitted, err := s.m.RepairContext(ctx)
	return convertEdges(admitted), err
}

// Edges implements StreamSession.
func (s *parallelStreamSession) Edges() []Edge { return convertEdges(s.m.EdgeList()) }

// Vertices implements StreamSession.
func (s *parallelStreamSession) Vertices() int { return s.used }

// EdgeCount implements StreamSession.
func (s *parallelStreamSession) EdgeCount() int { return s.m.EdgeCount() }

// DeferredCount implements StreamSession.
func (s *parallelStreamSession) DeferredCount() int { return s.m.DeferredCount() }

// Finalize implements StreamSession: every distinct valid delta is
// either in the maintained subgraph or still deferred, so their union
// reconstructs the accumulated input exactly; the engine's batch
// Extract over it is the canonical, arrival-order-independent result.
func (s *parallelStreamSession) Finalize(ctx context.Context) (*Graph, *EngineResult, error) {
	kept := s.m.EdgeList()
	deferred := s.m.DeferredEdges()
	us := make([]int32, 0, len(kept)+len(deferred))
	vs := make([]int32, 0, len(kept)+len(deferred))
	for _, e := range kept {
		us, vs = append(us, e.U), append(vs, e.V)
	}
	for _, e := range deferred {
		us, vs = append(us, e.U), append(vs, e.V)
	}
	g := graph.SubgraphFromEdgesWorkers(s.used, us, vs, s.cfg.Workers)
	er, err := parallelEngine{}.Extract(ctx, g, s.cfg)
	if err != nil {
		return nil, nil, err
	}
	return g, er, nil
}

// convertEdges maps the kernel's edge type onto the public one.
func convertEdges(in []incremental.Edge) []Edge {
	out := make([]Edge, len(in))
	for i, e := range in {
		out[i] = Edge{U: e.U, V: e.V}
	}
	return out
}
